// Speculative trace reuse (DESIGN.md §8): the oracle predictor must
// recover the limit study bit-for-bit, realizable predictors must
// classify every fetch decision consistently, misspeculation pricing
// must be monotone in the penalty, and the fig10 matrix must be
// bit-identical across thread counts and chunk sizes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "spec/consumer.hpp"
#include "spec/predictor.hpp"
#include "spec/spec_sim.hpp"
#include "spec/spec_timer.hpp"

namespace tlr::spec {
namespace {

core::SuiteConfig small_config() {
  core::SuiteConfig config;
  config.skip = 2'000;
  config.length = 30'000;
  return config;
}

reuse::RtmSimConfig sim_config(
    reuse::CollectHeuristic heuristic = reuse::CollectHeuristic::kFixedExpand,
    u32 fixed_n = 4) {
  reuse::RtmSimConfig config;
  config.geometry = reuse::RtmGeometry::rtm4k();
  config.heuristic = heuristic;
  config.fixed_n = fixed_n;
  return config;
}

void expect_same_sim_result(const reuse::RtmSimResult& a,
                            const reuse::RtmSimResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.reused_instructions, b.reused_instructions);
  EXPECT_EQ(a.reuse_operations, b.reuse_operations);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.rtm.lookups, b.rtm.lookups);
  EXPECT_EQ(a.rtm.hits, b.rtm.hits);
  EXPECT_EQ(a.rtm.insertions, b.rtm.insertions);
  EXPECT_EQ(a.rtm.way_evictions, b.rtm.way_evictions);
  EXPECT_EQ(a.rtm.trace_evictions, b.rtm.trace_evictions);
}

// ---- oracle == limit --------------------------------------------------

class OracleEquivalence
    : public ::testing::TestWithParam<reuse::CollectHeuristic> {};

/// The acceptance pin: with the always-reuse oracle the speculative
/// simulator *is* the limit simulator — identical committed reuse,
/// identical RTM traffic, zero misspeculation.
TEST_P(OracleEquivalence, SpecSimulatorMatchesLimitSimulator) {
  const auto stream = core::collect_workload_stream("compress",
                                                    small_config());

  reuse::RtmSimulator limit(sim_config(GetParam()));
  const reuse::RtmSimResult limit_result = limit.run(stream);

  RtmSpecConfig spec_config;
  spec_config.sim = sim_config(GetParam());
  spec_config.predictor.kind = PredictorKind::kOracle;
  RtmSpecSimulator spec(spec_config);
  const RtmSpecResult spec_result = spec.run(stream);

  expect_same_sim_result(spec_result.sim, limit_result);
  EXPECT_EQ(spec_result.spec.misspecs, 0u);
  EXPECT_EQ(spec_result.spec.missed, 0u);
  EXPECT_EQ(spec_result.spec.correct, limit_result.reuse_operations);
  EXPECT_EQ(spec_result.spec.accuracy(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Heuristics, OracleEquivalence,
    ::testing::Values(reuse::CollectHeuristic::kIlrNoExpand,
                      reuse::CollectHeuristic::kIlrExpand,
                      reuse::CollectHeuristic::kFixedExpand),
    [](const auto& info) {
      switch (info.param) {
        case reuse::CollectHeuristic::kIlrNoExpand: return "IlrNe";
        case reuse::CollectHeuristic::kIlrExpand: return "IlrExp";
        case reuse::CollectHeuristic::kFixedExpand: return "I4Exp";
      }
      return "unknown";
    });

/// Oracle pricing equals the existing RtmSimConsumer limit pricing
/// exactly — at every penalty, because the oracle never squashes.
TEST(OracleEquivalenceTest, TimingMatchesLimitPricingAtAnyPenalty) {
  const core::SuiteConfig config = small_config();
  timing::TimerConfig timer_config;
  timer_config.window = config.window;

  core::StudyEngine engine;

  core::RtmSimConsumer limit(sim_config(), timer_config);
  RtmSpecConfig spec_config;
  spec_config.sim = sim_config();
  spec_config.predictor.kind = PredictorKind::kOracle;
  SpecSimConsumer spec(spec_config);
  spec.add_timer(timer_config, /*penalty=*/0);
  spec.add_timer(timer_config, /*penalty=*/64);

  std::vector<core::StreamConsumer*> consumers = {&limit, &spec};
  engine.run_workload_stream("li", config, consumers);

  const Cycle limit_cycles = limit.timing_result().cycles;
  EXPECT_EQ(spec.timer(0).result().cycles, limit_cycles);
  EXPECT_EQ(spec.timer(1).result().cycles, limit_cycles);
  EXPECT_EQ(spec.timer(0).misspecs(), 0u);
}

/// fig10's oracle row reproduces fig9's I4 EXP committed-reuse numbers
/// exactly: the limit study is the zero-misprediction special case.
TEST(Fig10Test, OracleRowEqualsFig9I4Exp) {
  const core::SuiteConfig config = small_config();
  const std::vector<std::string> workloads = {"compress", "li"};
  core::StudyEngine engine;
  const core::ScaleProfile profile = core::ScaleProfile::custom(config);

  core::Fig10Options options;
  options.predictors = {{}};  // oracle only
  options.penalties = {0};
  options.workloads = workloads;
  const core::Fig10Result fig10 =
      core::fig10_speculative_reuse(engine, profile, options);

  core::Fig9Options fig9_options;
  fig9_options.workloads = workloads;
  const core::Fig9Result fig9 =
      core::fig9_finite_rtm(engine, profile, fig9_options);
  // I4 EXP is fig9 row 5 (ILR NE, ILR EXP, I1..I8).
  const auto heuristics = core::fig9_heuristics();
  usize i4 = 0;
  for (usize h = 0; h < heuristics.size(); ++h) {
    if (heuristics[h].label == "I4 EXP") i4 = h;
  }

  ASSERT_EQ(fig10.cells.size(), 1u);
  for (usize g = 0; g < fig10.geometries.size(); ++g) {
    EXPECT_EQ(fig10.cells[0][g].reuse_fraction,
              fig9.cells[i4][g].reuse_fraction)
        << "geometry " << fig10.geometries[g];
    EXPECT_EQ(fig10.cells[0][g].accuracy, 1.0);
    EXPECT_EQ(fig10.cells[0][g].misspec_rate, 0.0);
  }
}

// ---- determinism ------------------------------------------------------

TEST(Fig10Test, BitIdenticalAcrossThreadsAndChunks) {
  const core::ScaleProfile profile =
      core::ScaleProfile::custom(small_config());
  core::Fig10Options options;
  options.workloads = {"compress", "ijpeg"};
  options.penalties = {0, 16};

  core::EngineOptions serial;
  serial.threads = 1;
  serial.chunk_size = 701;  // forces traces to straddle chunks
  core::EngineOptions wide;
  wide.threads = 4;

  core::StudyEngine engine_a(serial);
  core::StudyEngine engine_b(wide);
  const util::Json a = core::fig10_to_json(
      core::fig10_speculative_reuse(engine_a, profile, options));
  const util::Json b = core::fig10_to_json(
      core::fig10_speculative_reuse(engine_b, profile, options));
  EXPECT_EQ(a.dump(), b.dump());
}

/// The fused fast path (Rtm::lookup_gated feeding both the reuse test
/// and the predictor's candidate scan) must not cost a single byte at
/// the committed scale: the full ci fig10 block reproduces the golden
/// report exactly, whatever the engine's thread count or chunk size.
TEST(Fig10Test, CiFig10MatchesCommittedGoldenAcrossEngineShapes) {
  std::string error;
  const auto golden =
      core::read_report_file(TLR_REPO_DIR "/tools/baseline_ci.json", &error);
  ASSERT_TRUE(golden.has_value()) << error;
  const util::Json* want = golden->at("figures").find("fig10");
  ASSERT_NE(want, nullptr);

  const core::ScaleProfile profile = core::ScaleProfile::ci();
  core::EngineOptions serial;
  serial.threads = 1;
  serial.chunk_size = 701;  // forces traces to straddle chunks
  core::EngineOptions wide;
  wide.threads = 4;  // default chunk size
  for (const core::EngineOptions& shape : {serial, wide}) {
    core::StudyEngine engine(shape);
    const util::Json produced =
        core::fig10_to_json(core::fig10_speculative_reuse(engine, profile));
    EXPECT_EQ(produced.dump(2), want->dump(2))
        << shape.threads << " thread(s), chunk " << shape.chunk_size;
  }
}

// ---- classification ---------------------------------------------------

/// Every fetch decision with stored candidates lands in exactly one
/// bucket, and committed reuse operations are exactly the correct
/// attempts.
TEST(SpecStatsTest, ClassificationIsConsistent) {
  const auto stream = core::collect_workload_stream("go", small_config());
  for (const PredictorKind kind :
       {PredictorKind::kLastValue, PredictorKind::kConfidence}) {
    RtmSpecConfig config;
    config.sim = sim_config();
    config.predictor.kind = kind;
    RtmSpecSimulator sim(config);
    const RtmSpecResult result = sim.run(stream);
    EXPECT_EQ(result.spec.correct, result.sim.reuse_operations);
    EXPECT_EQ(result.sim.instructions, stream.size());
    // Ground truth ran at every gated fetch: every correct or missed
    // decision is an actual hit (a misspec can coincide with an actual
    // hit on a *different* stored trace, so this is a lower bound).
    EXPECT_GE(result.sim.rtm.hits,
              result.spec.correct + result.spec.missed);
  }
}

/// The exact fetch-decision split at ci scale, pinned. The golden
/// report only keeps the derived rates (accuracy, misspec_rate); these
/// are the raw correct/misspec/missed/decline counts they reduce from,
/// so a change that shifts classifications while leaving the rounded
/// rates intact still trips here.
TEST(SpecStatsTest, CiClassificationCountsPinned) {
  const core::ScaleProfile profile = core::ScaleProfile::ci();
  const auto stream = core::collect_workload_stream(
      "compress", profile.config_for("compress"));
  struct Pin {
    PredictorKind kind;
    u64 correct, misspecs, missed, declines;
  };
  const Pin pins[] = {
      {PredictorKind::kLastValue, 58, 10184, 1421, 68078},
      {PredictorKind::kConfidence, 13, 104, 1718, 78058},
  };
  for (const Pin& pin : pins) {
    RtmSpecConfig config;
    config.sim = sim_config();
    config.predictor.kind = pin.kind;
    RtmSpecSimulator sim(config);
    const RtmSpecResult result = sim.run(stream);
    EXPECT_EQ(result.spec.correct, pin.correct) << predictor_name(pin.kind);
    EXPECT_EQ(result.spec.misspecs, pin.misspecs) << predictor_name(pin.kind);
    EXPECT_EQ(result.spec.missed, pin.missed) << predictor_name(pin.kind);
    EXPECT_EQ(result.spec.declines, pin.declines) << predictor_name(pin.kind);
  }
}

/// The confidence gate exists to trade coverage for accuracy: it must
/// attempt no more than the ungated last-value policy and misspeculate
/// no more often.
TEST(SpecStatsTest, ConfidenceGateCutsMisspeculation) {
  const auto stream =
      core::collect_workload_stream("compress", small_config());
  RtmSpecConfig config;
  config.sim = sim_config();
  config.predictor.kind = PredictorKind::kLastValue;
  RtmSpecSimulator naive(config);
  const RtmSpecResult naive_result = naive.run(stream);

  config.predictor.kind = PredictorKind::kConfidence;
  RtmSpecSimulator gated(config);
  const RtmSpecResult gated_result = gated.run(stream);

  EXPECT_GT(naive_result.spec.misspecs, 0u);  // the stream does punish
  EXPECT_LT(gated_result.spec.misspecs, naive_result.spec.misspecs);
  EXPECT_LE(gated_result.spec.attempts(), naive_result.spec.attempts());
  EXPECT_GT(gated_result.spec.accuracy(), naive_result.spec.accuracy());
}

// ---- pricing ----------------------------------------------------------

/// Misspeculation pricing is monotone: more penalty, never fewer
/// cycles; and any misspeculation under a positive penalty prices
/// worse than the free-lunch (floor-only) squash.
TEST(SpecTimerTest, PenaltyMonotone) {
  const core::SuiteConfig config = small_config();
  timing::TimerConfig timer_config;
  timer_config.window = config.window;

  RtmSpecConfig spec_config;
  spec_config.sim = sim_config();
  spec_config.predictor.kind = PredictorKind::kLastValue;
  core::StudyEngine engine;
  SpecSimConsumer spec(spec_config);
  for (const Cycle penalty : {0u, 8u, 64u}) {
    spec.add_timer(timer_config, penalty);
  }
  std::vector<core::StreamConsumer*> consumers = {&spec};
  engine.run_workload_stream("compress", config, consumers);

  ASSERT_GT(spec.result().spec.misspecs, 0u);
  const Cycle c0 = spec.timer(0).result().cycles;
  const Cycle c8 = spec.timer(1).result().cycles;
  const Cycle c64 = spec.timer(2).result().cycles;
  EXPECT_LE(c0, c8);
  EXPECT_LT(c8, c64);
  EXPECT_EQ(spec.timer(0).misspecs(), spec.result().spec.misspecs);
}

/// With no misspeculation events a SpecTimer is bit-identical to the
/// plain StreamingTimer it extends.
TEST(SpecTimerTest, NoMisspecsMeansStreamingTimer) {
  const auto stream =
      core::collect_workload_stream("tomcatv", small_config());
  timing::TimerConfig config;
  config.window = 256;
  timing::StreamingTimer plain(config);
  SpecTimer spec(config, /*penalty=*/32);
  for (const isa::DynInst& inst : stream) {
    plain.step_normal(inst);
    spec.step_normal(inst);
  }
  EXPECT_EQ(plain.result().cycles, spec.result().cycles);
  EXPECT_EQ(spec.misspecs(), 0u);
}

// ---- predictor plumbing ----------------------------------------------

TEST(PredictorTest, NamesRoundTrip) {
  for (const PredictorKind kind :
       {PredictorKind::kOracle, PredictorKind::kLastValue,
        PredictorKind::kConfidence}) {
    EXPECT_EQ(predictor_from_name(predictor_name(kind)), kind);
    PredictorConfig config;
    config.kind = kind;
    EXPECT_EQ(make_predictor(config)->name(), predictor_name(kind));
  }
  EXPECT_FALSE(predictor_from_name("alpha21264").has_value());
}

// ---- report integration ----------------------------------------------

TEST(Fig10ReportTest, SectionAbsentUnlessRunAndOrderedAfterFig9) {
  core::ScaleProfile profile = core::ScaleProfile::laptop();
  core::MetricOptions options;
  const std::vector<core::WorkloadMetrics> suite;
  core::ReportMeta meta;

  const util::Json without =
      core::build_report(profile, options, suite, meta, {});
  EXPECT_FALSE(without.find("figures")->contains("fig10"));

  core::ReportFigures figures;
  figures.fig10.emplace();
  figures.fig10->predictors = {"oracle"};
  figures.fig10->penalties = {0, 8};
  figures.fig10->geometries = {"512", "4K"};
  core::Fig10Cell cell;
  cell.reuse_fraction = 0.25;
  cell.accuracy = 1.0;
  cell.misspec_rate = 0.0;
  cell.speedups = {1.5, 1.25};
  figures.fig10->cells = {{cell, cell}};
  const util::Json with =
      core::build_report(profile, options, suite, meta, figures);
  const util::Json* fig10 = with.find("figures")->find("fig10");
  ASSERT_NE(fig10, nullptr);
  EXPECT_EQ(fig10->find("speedup")->at(0).at(1).at(0).as_double(), 1.5);

  // Structural compare must flag the added section against a baseline
  // that lacks it.
  const auto diffs = core::compare_reports(with, without);
  ASSERT_FALSE(diffs.empty());
  EXPECT_NE(diffs.front().find("fig10"), std::string::npos);
}

}  // namespace
}  // namespace tlr::spec
