// util::Json: writer determinism, escaping, exact-number round trips,
// and the parser the report pipeline trusts for --compare.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/json.hpp"

namespace tlr::util {
namespace {

Json parse_ok(const std::string& text) {
  std::string error;
  const auto parsed = Json::parse(text, &error);
  EXPECT_TRUE(parsed.has_value()) << text << " -> " << error;
  return parsed.value_or(Json());
}

void expect_parse_fails(const std::string& text) {
  std::string error;
  EXPECT_FALSE(Json::parse(text, &error).has_value()) << text;
  EXPECT_FALSE(error.empty()) << text;
}

TEST(JsonTest, ScalarsDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(i64{-7}).dump(), "-7");
  EXPECT_EQ(Json(u64{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonTest, DoublesAlwaysCarryFractionalMarker) {
  // 2.0 must not round-trip into an integer flavour.
  EXPECT_EQ(Json(2.0).dump(), "2.0");
  const Json round_tripped = parse_ok(Json(2.0).dump());
  EXPECT_EQ(round_tripped.kind(), Json::Kind::kDouble);
}

TEST(JsonTest, DoubleRoundTripIsExact) {
  const double values[] = {0.0,
                           1.0 / 3.0,
                           6.02214076e23,
                           -2.5e-10,
                           0.1,
                           123456789.123456789,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double value : values) {
    const Json parsed = parse_ok(Json(value).dump());
    EXPECT_EQ(parsed.as_double(), value) << Json(value).dump();
  }
}

TEST(JsonTest, IntegerRoundTripIsExact) {
  // 2^63 + 1 is not representable as a double; an exact u64 path is
  // required for paper-scale cycle counts.
  const u64 value = 9223372036854775809ull;
  const Json parsed = parse_ok(Json(value).dump());
  EXPECT_EQ(parsed.as_u64(), value);
  const Json negative = parse_ok("-9223372036854775808");
  EXPECT_EQ(negative.as_i64(), std::numeric_limits<i64>::min());
}

TEST(JsonTest, NonFiniteDoublesDegradeToNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(Json("line\nfeed").dump(), "\"line\\nfeed\"");
  EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
  // UTF-8 passes through verbatim.
  EXPECT_EQ(Json("émigré").dump(), "\"émigré\"");
}

TEST(JsonTest, EscapeRoundTrip) {
  const std::string nasty = "quote \" slash \\ ctrl \x02 tab \t done";
  const Json parsed = parse_ok(Json(nasty).dump());
  EXPECT_EQ(parsed.as_string(), nasty);
}

TEST(JsonTest, UnicodeEscapesDecode) {
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(parse_ok("\"\\u20ac\"").as_string(), "\xe2\x82\xac");  // €
  // Surrogate pair: U+1D11E (musical G clef).
  EXPECT_EQ(parse_ok("\"\\ud834\\udd1e\"").as_string(),
            "\xf0\x9d\x84\x9e");
  expect_parse_fails("\"\\ud834\"");         // unpaired high surrogate
  expect_parse_fails("\"\\udd1e\"");         // unpaired low surrogate
  expect_parse_fails("\"\\u12g4\"");         // bad hex digit
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json object = Json::object();
  object.set("zebra", 1);
  object.set("alpha", 2);
  object.set("mid", 3);
  EXPECT_EQ(object.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Replacing a key keeps its original position.
  object.set("alpha", 9);
  EXPECT_EQ(object.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonTest, DumpIsDeterministic) {
  Json doc = Json::object();
  doc.set("values", Json::array());
  for (int i = 0; i < 8; ++i) {
    doc.set("k" + std::to_string(i), Json(i * 0.1));
  }
  EXPECT_EQ(doc.dump(2), doc.dump(2));
  EXPECT_EQ(parse_ok(doc.dump(2)).dump(2), doc.dump(2));
}

TEST(JsonTest, PrettyPrintShape) {
  Json doc = Json::object();
  doc.set("a", 1);
  Json nested = Json::array();
  nested.push_back(Json(true));
  doc.set("b", std::move(nested));
  EXPECT_EQ(doc.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}\n");
}

TEST(JsonTest, ParseWhitespaceAndNesting) {
  const Json doc = parse_ok(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").at(0).as_u64(), 1u);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_double(), 2.5);
  EXPECT_TRUE(doc.at("a").at(2).at("b").is_null());
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  expect_parse_fails("");
  expect_parse_fails("{");
  expect_parse_fails("[1,]");
  expect_parse_fails("{\"a\":}");
  expect_parse_fails("{\"a\" 1}");
  expect_parse_fails("{'a': 1}");
  expect_parse_fails("[1] trailing");
  expect_parse_fails("nul");
  expect_parse_fails("\"unterminated");
  expect_parse_fails("\"ctrl \x01 char\"");
  expect_parse_fails("01x");
  expect_parse_fails("-");
}

TEST(JsonTest, ParseErrorCarriesPosition) {
  std::string error;
  EXPECT_FALSE(Json::parse("{\n  \"a\": oops\n}", &error).has_value());
  EXPECT_NE(error.find("2:"), std::string::npos) << error;
}

TEST(JsonTest, DeepNestingIsRejectedNotCrashed) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  expect_parse_fails(deep);
}

TEST(JsonTest, EqualityAcrossNumberFlavours) {
  EXPECT_EQ(Json(u64{5}), Json(i64{5}));
  EXPECT_EQ(Json(5.0), Json(u64{5}));
  EXPECT_NE(Json(u64{5}), Json(i64{-5}));
  Json a = Json::object();
  a.set("x", u64{1});
  Json b = Json::object();
  b.set("x", u64{1});
  EXPECT_EQ(a, b);
  b.set("x", u64{2});
  EXPECT_NE(a, b);
}

TEST(JsonTest, MissingKeyYieldsNullSentinel) {
  const Json object = Json::object();
  EXPECT_TRUE(object.at("nope").is_null());
  EXPECT_FALSE(object.contains("nope"));
}

}  // namespace
}  // namespace tlr::util
