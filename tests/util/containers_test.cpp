// SmallVector, hashing and statistics tests.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "util/hash.hpp"
#include "util/small_vector.hpp"
#include "util/stats.hpp"

namespace tlr {
namespace {

TEST(SmallVectorTest, InlineUntilCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.on_heap());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_TRUE(v.on_heap());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, GrowsFarBeyondInline) {
  SmallVector<u64, 2> v;
  for (u64 i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (u64 i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(SmallVectorTest, CopyPreservesAndIsolates) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  SmallVector<int, 2> b = a;
  b[0] = 99;
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(b[0], 99);
  EXPECT_EQ(b.size(), a.size());
}

TEST(SmallVectorTest, MoveStealsHeap) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  SmallVector<int, 2> b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT: moved-from defined state
}

TEST(SmallVectorTest, EqualityComparesContents) {
  SmallVector<int, 4> a{1, 2, 3};
  SmallVector<int, 4> b{1, 2, 3};
  SmallVector<int, 4> c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVectorTest, ClearAndReuse) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(5);
  EXPECT_EQ(v[0], 5);
}

TEST(SmallVectorTest, ResizeZeroFills) {
  SmallVector<u64, 4> v;
  v.push_back(7);
  v.resize(6);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 7u);
  for (usize i = 1; i < 6; ++i) EXPECT_EQ(v[i], 0u);
}

TEST(DigestTest, OrderSensitive) {
  Digest128 a, b;
  a.feed(1);
  a.feed(2);
  b.feed(2);
  b.feed(1);
  EXPECT_FALSE(a == b);
}

TEST(DigestTest, DeterministicAndSensitive) {
  Digest128 a, b, c;
  for (u64 x : {3ull, 1ull, 4ull, 1ull, 5ull}) {
    a.feed(x);
    b.feed(x);
  }
  for (u64 x : {3ull, 1ull, 4ull, 1ull, 6ull}) c.feed(x);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(DigestTest, EmptyDiffersFromFed) {
  Digest128 a, b;
  b.feed(0);
  EXPECT_FALSE(a == b);
}

TEST(StatsTest, Means) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(xs), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 3.0 / (1.0 + 0.5 + 0.25));
  EXPECT_NEAR(geometric_mean(xs), 2.0, 1e-12);
}

TEST(StatsTest, MeansOfEmptyAreZero) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean({}), 0.0);
}

TEST(StatsTest, HarmonicBelowArithmetic) {
  const std::vector<double> xs = {1.5, 2.5, 9.0, 3.0};
  EXPECT_LT(harmonic_mean(xs), arithmetic_mean(xs));
}

TEST(StatsTest, RunningStats) {
  RunningStats s;
  for (double x : {2.0, 8.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(StatsTest, HistogramBucketsAndQuantile) {
  Histogram h(10, 100.0);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
  h.add(1e9);  // overflow lands in the last bucket
  EXPECT_EQ(h.bucket_count(9), 11u);
}

TEST(HashTest, Mix64AvalanchesAndIsStable) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(12345), mix64(12346));
  // Note: 0 is the mixer's (only relevant) fixed point; inputs of 1 bit
  // must still avalanche to dense outputs.
  EXPECT_GT(std::popcount(mix64(1)), 20);
}

}  // namespace
}  // namespace tlr
