#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace tlr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(7);
  std::vector<u64> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next());
  rng.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next(), first[i]);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (u64 bound : {1ull, 2ull, 7ull, 100ull, 12345ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const u64 x = rng.range(5, 8);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 8u);
    saw_lo |= (x == 5);
    saw_hi |= (x == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.unit();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ChanceZeroAndCertain) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(29);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.below(10)];
  for (int count : buckets) {
    EXPECT_GT(count, draws / 10 - draws / 50);
    EXPECT_LT(count, draws / 10 + draws / 50);
  }
}

TEST(ZipfTest, SkewFavoursSmallIndices) {
  ZipfDraw zipf(100, 1.2, 5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.next()];
  // Index 0 must dominate the tail decisively.
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 5000);
}

TEST(ZipfTest, CoversRangeAndIsDeterministic) {
  ZipfDraw a(8, 1.0, 9), b(8, 1.0, 9);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) {
    const u64 x = a.next();
    EXPECT_EQ(x, b.next());
    EXPECT_LT(x, 8u);
    seen.insert(x);
  }
  EXPECT_GE(seen.size(), 6u);  // skewed but not degenerate
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfDraw zipf(1, 1.5, 1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(zipf.next(), 0u);
}

}  // namespace
}  // namespace tlr
