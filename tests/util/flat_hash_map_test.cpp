// FlatHashMap / FlatHashSet property suite (vs std::unordered_map as
// the reference model) and SmallFunction behaviour tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/flat_hash_map.hpp"
#include "util/function.hpp"
#include "util/rng.hpp"

namespace tlr {
namespace {

TEST(FlatHashMapTest, EmptyBehaviour) {
  FlatHashMap<u64, u64> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.contains(42));
  EXPECT_FALSE(map.erase(42));
}

TEST(FlatHashMapTest, InsertFindOverwrite) {
  FlatHashMap<u64, u64> map;
  map[7] = 70;
  map[8] = 80;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 70u);
  map[7] = 71;  // overwrite in place
  EXPECT_EQ(*map.find(7), 71u);
  EXPECT_EQ(map.size(), 2u);
  const auto [slot, inserted] = map.try_emplace(7);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 71u);
}

TEST(FlatHashMapTest, EraseAndTombstoneReuse) {
  FlatHashMap<u64, u64> map;
  for (u64 k = 0; k < 100; ++k) map[k] = k * 10;
  for (u64 k = 0; k < 100; k += 2) EXPECT_TRUE(map.erase(k));
  EXPECT_EQ(map.size(), 50u);
  for (u64 k = 0; k < 100; ++k) {
    EXPECT_EQ(map.contains(k), k % 2 == 1) << k;
  }
  // Reinsert into the tombstoned range: values must be fresh and the
  // map must not lose the surviving odd keys.
  for (u64 k = 0; k < 100; k += 2) map[k] = k + 1;
  EXPECT_EQ(map.size(), 100u);
  for (u64 k = 0; k < 100; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k % 2 == 0 ? k + 1 : k * 10) << k;
  }
}

TEST(FlatHashMapTest, HeavyChurnKeepsCapacityBounded) {
  // Insert/erase cycles over a fixed key set must not grow the table
  // forever: same-capacity rehashes reclaim tombstones.
  FlatHashMap<u64, u64> map;
  for (int round = 0; round < 200; ++round) {
    for (u64 k = 0; k < 64; ++k) map[k] = k;
    for (u64 k = 0; k < 64; ++k) EXPECT_TRUE(map.erase(k));
  }
  EXPECT_TRUE(map.empty());
  EXPECT_LE(map.capacity(), 1024u);
}

TEST(FlatHashMapTest, EraseOnlyPhaseReclaimsTombstones) {
  // An erase-heavy phase with no interleaved inserts must shed its
  // tombstones on its own: growth-time reclaim never fires without an
  // insert, and a table left at its high-water probe lengths would
  // tax every later find. The reclaim triggers inside erase() past a
  // quarter of the table, so tombstones — and with them the longest
  // possible probe chain — stay bounded by capacity at every point of
  // the drain, not just at the end.
  FlatHashMap<u64, u64> map;
  constexpr u64 kEntries = 4096;
  for (u64 k = 0; k < kEntries; ++k) map[k] = k;
  const usize capacity = map.capacity();
  for (u64 k = 0; k < kEntries; ++k) {
    ASSERT_TRUE(map.erase(k));
    ASSERT_LE(map.tombstones() * 4, map.capacity()) << "after erasing " << k;
  }
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), capacity);  // reclaim, not regrowth
  // Fully drained: every chain is gone once the last reclaim ran.
  EXPECT_LE(map.longest_occupied_run(), map.capacity() / 4);
  // Survivors stay findable through the in-place rehashes.
  for (u64 k = 0; k < kEntries; ++k) map[k] = k * 2;
  for (u64 k = 0; k < kEntries; k += 2) ASSERT_TRUE(map.erase(k));
  for (u64 k = 1; k < kEntries; k += 2) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k * 2) << k;
  }
}

TEST(FlatHashMapTest, ChurnKeepsProbeChainsBounded) {
  // Insert/erase churn at a steady size: occupied runs (the ceiling on
  // any probe chain) must stay a modest fraction of capacity instead
  // of creeping toward the full table as tombstones accumulate.
  FlatHashMap<u64, u64> map;
  Rng rng(0xC0FFEE);
  std::vector<u64> live;
  for (int step = 0; step < 50000; ++step) {
    if (live.size() < 256 || rng.below(2) == 0) {
      const u64 key = rng.next();
      map[key] = key;
      live.push_back(key);
    } else {
      const usize pick = rng.below(live.size());
      map.erase(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    if (step % 1024 == 0) {
      // size + tombstones <= 7/8 capacity (growth invariant) and
      // tombstones <= capacity/4 (erase-time reclaim) cap how much of
      // the table can be occupied at once; a run longer than half the
      // table would mean one of the two stopped holding.
      ASSERT_LE(map.longest_occupied_run(), map.capacity() / 2)
          << "step " << step;
    }
  }
}

TEST(FlatHashMapTest, RandomOpsMatchUnorderedMap) {
  // Property check: a long random op sequence must be observationally
  // identical to std::unordered_map.
  FlatHashMap<u64, u64> flat;
  std::unordered_map<u64, u64> reference;
  Rng rng(0xFEEDFACE);
  for (int step = 0; step < 20000; ++step) {
    const u64 key = rng.below(512) * 0x10001ULL;  // clustered keys
    switch (rng.below(4)) {
      case 0:
      case 1:  // insert/overwrite
        flat[key] = static_cast<u64>(step);
        reference[key] = static_cast<u64>(step);
        break;
      case 2: {  // find
        const u64* value = flat.find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(value != nullptr, it != reference.end());
        if (value != nullptr) {
          EXPECT_EQ(*value, it->second);
        }
        break;
      }
      case 3:  // erase
        EXPECT_EQ(flat.erase(key), reference.erase(key) == 1);
        break;
    }
    ASSERT_EQ(flat.size(), reference.size());
  }
  // Full-content equality at the end.
  for (const auto& [key, value] : reference) {
    ASSERT_NE(flat.find(key), nullptr);
    EXPECT_EQ(*flat.find(key), value);
  }
}

TEST(FlatHashMapTest, IterationOrderIndependence) {
  // for_each visits every entry exactly once; the *set* of entries
  // matches the reference whatever the internal order, and rehashing
  // (which reorders) must not change it.
  FlatHashMap<u64, u64> flat;
  std::map<u64, u64> reference;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const u64 key = rng.next();
    flat[key] = key ^ 1;
    reference[key] = key ^ 1;
  }
  std::map<u64, u64> seen;
  flat.for_each([&seen](u64 key, const u64& value) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "duplicate visit";
  });
  EXPECT_EQ(seen, reference);
}

TEST(FlatHashMapTest, RehashGrowthPreservesEntries) {
  FlatHashMap<u64, u64> map;
  map.reserve(4);
  const usize initial_capacity = map.capacity();
  for (u64 k = 0; k < 10000; ++k) map[k] = ~k;
  EXPECT_GT(map.capacity(), initial_capacity);
  for (u64 k = 0; k < 10000; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), ~k);
  }
  EXPECT_EQ(map.size(), 10000u);
}

TEST(FlatHashMapTest, MoveOnlyValues) {
  FlatHashMap<u64, std::unique_ptr<u64>> map;
  for (u64 k = 0; k < 100; ++k) {
    map[k] = std::make_unique<u64>(k * 3);
  }
  for (u64 k = 0; k < 100; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(**map.find(k), k * 3);
  }
  EXPECT_TRUE(map.erase(50));  // must release the owned allocation
  EXPECT_EQ(map.find(50), nullptr);
  map.clear();
  EXPECT_TRUE(map.empty());
}

TEST(FlatHashSetTest, MatchesUnorderedSet) {
  FlatHashSet<u64> flat;
  std::unordered_set<u64> reference;
  Rng rng(99);
  for (int step = 0; step < 10000; ++step) {
    const u64 key = rng.below(256);
    if (rng.below(3) == 0) {
      EXPECT_EQ(flat.erase(key), reference.erase(key) == 1);
    } else {
      EXPECT_EQ(flat.insert(key), reference.insert(key).second);
    }
    ASSERT_EQ(flat.size(), reference.size());
  }
  for (u64 k = 0; k < 256; ++k) {
    EXPECT_EQ(flat.contains(k), reference.count(k) == 1) << k;
  }
}

struct CompositeKey {
  u64 a = 0;
  u64 b = 0;
  friend bool operator==(const CompositeKey&, const CompositeKey&) = default;
};
struct CompositeKeyHash {
  u64 operator()(const CompositeKey& key) const noexcept {
    return hash_combine(mix64(key.a), key.b);
  }
};

TEST(FlatHashSetTest, CustomKeyAndHash) {
  FlatHashSet<CompositeKey, CompositeKeyHash> set;
  EXPECT_TRUE(set.insert({1, 2}));
  EXPECT_FALSE(set.insert({1, 2}));
  EXPECT_TRUE(set.insert({2, 1}));
  EXPECT_TRUE(set.contains({1, 2}));
  EXPECT_FALSE(set.contains({3, 3}));
  EXPECT_EQ(set.size(), 2u);
}

// ---- SmallFunction ---------------------------------------------------

TEST(SmallFunctionTest, EmptyAndBool) {
  SmallFunction fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
}

TEST(SmallFunctionTest, CallsInlineCapture) {
  int calls = 0;
  SmallFunction fn = [&calls] { ++calls; };
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  SmallFunction a = [&calls] { ++calls; };
  SmallFunction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(calls, 1);
  SmallFunction c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFunctionTest, LargeCaptureFallsBackToHeap) {
  // A capture bigger than the inline buffer must still work (heap
  // path), and destruction must release it (checked by the shared_ptr
  // count).
  auto witness = std::make_shared<int>(7);
  std::array<u64, 32> big{};
  big[31] = 42;
  {
    SmallFunction fn = [witness, big] {
      EXPECT_EQ(big[31], 42u);
      EXPECT_EQ(*witness, 7);
    };
    EXPECT_EQ(witness.use_count(), 2);
    fn();
  }
  EXPECT_EQ(witness.use_count(), 1);
}

TEST(SmallFunctionTest, MoveOnlyCapture) {
  auto owned = std::make_unique<int>(5);
  int seen = 0;
  SmallFunction fn = [owned = std::move(owned), &seen] { seen = *owned; };
  SmallFunction moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 5);
}

}  // namespace
}  // namespace tlr
