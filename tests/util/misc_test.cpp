// TextTable and ThreadPool tests.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace tlr {
namespace {

TEST(TextTableTest, CellsAndNumbers) {
  TextTable t("demo");
  t.set_columns({"name", "value", "pct"});
  t.begin_row();
  t.add_cell("alpha");
  t.add_number(3.14159, 2);
  t.add_percent(0.5);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "alpha");
  EXPECT_EQ(t.cell(0, 1), "3.14");
  EXPECT_EQ(t.cell(0, 2), "50.0%");
}

TEST(TextTableTest, RenderContainsHeadersAndTitle) {
  TextTable t("my title");
  t.set_columns({"a", "b"});
  t.begin_row();
  t.add_integer(7);
  t.add_integer(9);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("my title"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(TextTableTest, CsvFormat) {
  TextTable t("csv");
  t.set_columns({"x", "y"});
  t.begin_row();
  t.add_integer(1);
  t.add_integer(2);
  std::ostringstream oss;
  t.render_csv(oss);
  EXPECT_EQ(oss.str(), "# csv\nx,y\n1,2\n");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](usize i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 50);
}

// ---- exception propagation and degenerate shapes ----------------------

TEST(ThreadPoolTest, TaskExceptionPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsAndStillRunsEveryJob) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&hits](usize i) {
                                   hits[i].fetch_add(1);
                                   if (i == 7) {
                                     throw std::logic_error("job 7");
                                   }
                                 }),
               std::logic_error);
  // The failure is reported, not amplified: every other job still ran
  // exactly once.
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, FirstCapturedExceptionWinsRestAreDropped) {
  ThreadPool pool(4);
  std::atomic<int> thrown{0};
  try {
    pool.parallel_for(16, [&thrown](usize) {
      thrown.fetch_add(1);
      throw std::runtime_error("many");
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "many");
  }
  EXPECT_EQ(thrown.load(), 16);  // all jobs ran despite the failures
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](usize) { throw std::runtime_error("once"); }),
      std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(8, [&counter](usize) { counter.fetch_add(1); });
  pool.wait_idle();  // the stale error must not resurface
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, ZeroJobParallelForIsANoOp) {
  ThreadPool pool(2);
  int touched = 0;
  pool.parallel_for(0, [&touched](usize) { ++touched; });
  EXPECT_EQ(touched, 0);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCoversRangeAndPropagates) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(16, 0);  // single worker: no data race
  pool.parallel_for(16, [&hits](usize i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_THROW(
      pool.parallel_for(1, [](usize) { throw std::runtime_error("solo"); }),
      std::runtime_error);
}

}  // namespace
}  // namespace tlr
