// The committed corpus (corpus/*.tlc) is the curated face of the TLC
// frontend: every program must parse, agree with the reference
// evaluator in one-shot mode, and build as a streaming workload via
// workloads::make_from_source — the exact path `reuse_study
// --workload-file` takes. Reads straight from the checkout
// (TLR_REPO_DIR), so a corpus edit that breaks a program fails here,
// not in the golden job.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tlc_check.hpp"
#include "workloads/workload.hpp"

namespace tlr::lang {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  const std::filesystem::path dir =
      std::filesystem::path(TLR_REPO_DIR) / "corpus";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".tlc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TlcCorpusTest, CorpusIsPresent) {
  EXPECT_GE(corpus_files().size(), 10u)
      << "corpus/ should hold the curated TLC programs (docs/tlc.md)";
}

TEST(TlcCorpusTest, EveryProgramMatchesTheOracle) {
  for (const auto& path : corpus_files()) {
    const std::string source = read_file(path);
    ASSERT_FALSE(source.empty()) << path;
    const std::string why = test::diff_against_oracle(source);
    EXPECT_TRUE(why.empty()) << path.filename() << ": " << why;
  }
}

TEST(TlcCorpusTest, EveryProgramBuildsAsAStreamingWorkload) {
  for (const auto& path : corpus_files()) {
    const std::string name = path.stem().string();
    std::string error;
    const auto workload =
        workloads::make_from_source(name, read_file(path), {}, &error);
    ASSERT_TRUE(workload.has_value()) << error;
    EXPECT_EQ(workload->name, name);
    EXPECT_FALSE(workload->program.code().empty());
  }
}

TEST(TlcCorpusTest, ProgramsSurviveScaleAndSeedVariation) {
  // The study sweeps WorkloadParams; corpus programs must compile and
  // stay oracle-clean across the values CI exercises.
  for (const auto& path : corpus_files()) {
    const std::string source = read_file(path);
    for (const auto& [seed, scale] :
         std::vector<std::pair<u64, u32>>{{1, 1}, {0xC0FFEE, 2}}) {
      ParseParams params;
      params.seed = seed;
      params.scale = scale;
      const std::string why = test::diff_against_oracle(source, params);
      EXPECT_TRUE(why.empty())
          << path.filename() << " seed=" << seed << " scale=" << scale
          << ": " << why;
    }
  }
}

}  // namespace
}  // namespace tlr::lang
