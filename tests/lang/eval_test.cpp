// TLC semantics pins: the corner cases where "what the compiled code
// does" and "what a C programmer might expect" could diverge. Each
// test states the contract (docs/tlc.md §semantics), checks the
// reference evaluator's answer, and — via diff_against_oracle — that
// the compiled program agrees bit for bit.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "tlc_check.hpp"

namespace tlr::lang {
namespace {

/// Compiled and evaluated executions must agree; returns the agreed
/// main() result.
i64 run_both(const std::string& source) {
  const std::string why = test::diff_against_oracle(source);
  EXPECT_TRUE(why.empty()) << why << "\n--- source ---\n" << source;
  return test::oracle_result(source);
}

TEST(TlcSemanticsTest, DivisionFollowsTheMiniIsa) {
  // Division/remainder by zero produce 0, not a trap (the mini-ISA's
  // ALU contract, vm/interpreter.cpp).
  EXPECT_EQ(run_both("int main() { return 7 / 0; }"), 0);
  EXPECT_EQ(run_both("int main() { return 7 % 0; }"), 0);
  EXPECT_EQ(run_both("int main() { return -7 / 2; }"), -3);  // trunc toward 0
  EXPECT_EQ(run_both("int main() { return -7 % 2; }"), -1);
  // INT64_MIN / -1 wraps to INT64_MIN with remainder 0 (would SIGFPE
  // natively; both back ends guard it).
  const std::string min = "(0 - 9223372036854775807 - 1)";
  EXPECT_EQ(run_both("int main() { return " + min + " / (0 - 1); }"),
            std::numeric_limits<i64>::min());
  EXPECT_EQ(run_both("int main() { return " + min + " % (0 - 1); }"), 0);
}

TEST(TlcSemanticsTest, ShiftCountsAreMaskedTo63) {
  EXPECT_EQ(run_both("int main() { return 1 << 64; }"), 1);   // 64 & 63 == 0
  EXPECT_EQ(run_both("int main() { return 1 << 65; }"), 2);
  EXPECT_EQ(run_both("int main() { return 256 >> 72; }"), 1); // 72 & 63 == 8
  // >> is arithmetic: sign bits shift in.
  EXPECT_EQ(run_both("int main() { return (0 - 8) >> 1; }"), -4);
}

TEST(TlcSemanticsTest, ArithmeticWraps) {
  EXPECT_EQ(run_both("int main() { return 9223372036854775807 + 1; }"),
            std::numeric_limits<i64>::min());
  EXPECT_EQ(run_both("int main() { return 3037000500 * 3037000500; }"),
            static_cast<i64>(u64{3037000500} * u64{3037000500}));
}

TEST(TlcSemanticsTest, ArrayIndicesAreMasked) {
  // Index 11 into an 8-element array hits slot 3; negative indices mask
  // through two's complement (-1 & 7 == 7). Every access is total.
  EXPECT_EQ(run_both("int A[8];\n"
                     "int main() { A[3] = 42; return A[11]; }"),
            42);
  EXPECT_EQ(run_both("int A[8];\n"
                     "int main() { A[7] = 9; return A[0 - 1]; }"),
            9);
}

TEST(TlcSemanticsTest, LogicalOpsDoNotShortCircuit) {
  // Both operands always evaluate: the right-hand store happens even
  // when the left side already decides the answer.
  EXPECT_EQ(run_both("int g = 0;\n"
                     "int set() { g = 1; return 0; }\n"
                     "int main() { int r = 0 && set(); return g * 10 + r; }"),
            10);
  EXPECT_EQ(run_both("int g = 0;\n"
                     "int set() { g = 1; return 0; }\n"
                     "int main() { int r = 1 || set(); return g * 10 + r; }"),
            11);
}

TEST(TlcSemanticsTest, LocalsZeroInitialiseAndReturnDefaultsToZero) {
  EXPECT_EQ(run_both("int main() { int x; return x; }"), 0);
  // A function that falls off the end returns 0.
  EXPECT_EQ(run_both("int f() { int y = 5; y = y + 1; }\n"
                     "int main() { return f(); }"),
            0);
}

TEST(TlcSemanticsTest, EvaluationIsLeftToRight) {
  // g reads before and after the mutating call must see different
  // values in a fixed order.
  EXPECT_EQ(run_both("int g = 1;\n"
                     "int bump() { g = g + 10; return 100; }\n"
                     "int main() { return g + bump() + g; }"),
            1 + 100 + 11);
}

TEST(TlcSemanticsTest, BuiltinsBindParseParams) {
  ParseParams params;
  params.seed = 12345;
  params.scale = 3;
  const std::string source = "int main() { return SEED * 10 + SCALE; }";
  const std::string why = test::diff_against_oracle(source, params);
  EXPECT_TRUE(why.empty()) << why;
  EXPECT_EQ(test::oracle_result(source, params), 12345 * 10 + 3);
}

TEST(TlcSemanticsTest, RecursionAndGlobalsPersistWithinARun) {
  EXPECT_EQ(run_both("int fib(int n) {\n"
                     "  if (n < 2) { return n; }\n"
                     "  return fib(n - 1) + fib(n - 2);\n"
                     "}\n"
                     "int main() { return fib(15); }"),
            610);
}

TEST(TlcEvalLimitsTest, RunawayProgramsGetAVerdictNotAHang) {
  Diag diag;
  const auto infinite =
      parse("int main() { while (1) { } return 0; }", ParseParams{}, &diag);
  ASSERT_TRUE(infinite.has_value()) << diag.to_string("test");
  EvalLimits limits;
  limits.max_steps = 10'000;
  const EvalResult looped = evaluate(*infinite, limits);
  EXPECT_FALSE(looped.ok);
  EXPECT_NE(looped.error.find("step limit"), std::string::npos)
      << looped.error;

  const auto deep = parse("int f(int n) { return f(n + 1); }\n"
                          "int main() { return f(0); }",
                          ParseParams{}, &diag);
  ASSERT_TRUE(deep.has_value()) << diag.to_string("test");
  const EvalResult overflowed = evaluate(*deep);
  EXPECT_FALSE(overflowed.ok);
  EXPECT_NE(overflowed.error.find("call depth"), std::string::npos)
      << overflowed.error;
}

TEST(TlcEvalTest, FinalStateReportsEveryGlobal) {
  Diag diag;
  const auto unit = parse("int A[4];\nint g = 7;\n"
                          "int main() { A[1] = g; g = g + 1; return 0; }",
                          ParseParams{}, &diag);
  ASSERT_TRUE(unit.has_value()) << diag.to_string("test");
  const EvalResult result = evaluate(*unit);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.globals.at("g"), 8);
  const std::vector<i64> want = {0, 7, 0, 0};
  EXPECT_EQ(result.arrays.at("A"), want);
}

}  // namespace
}  // namespace tlr::lang
