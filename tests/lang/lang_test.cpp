// TLC frontend error paths: every malformed input must come back as a
// single Diag with the exact 1-based line:col of the offending token —
// never an assert, never a crash (docs/tlc.md, satellite of the
// compiled-workload frontend). Positions are pinned so diagnostics
// stay stable for the CLI's `file:line:col: message` form.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "lang/parser.hpp"

namespace tlr::lang {
namespace {

struct ExpectedDiag {
  std::string message_part;
  u32 line = 0;  // 0: any position
  u32 col = 0;
};

void expect_rejected(const std::string& source, const ExpectedDiag& want) {
  Diag diag;
  const auto unit = parse(source, ParseParams{}, &diag);
  ASSERT_FALSE(unit.has_value()) << source;
  EXPECT_NE(diag.message.find(want.message_part), std::string::npos)
      << "got: " << diag.to_string("test") << "\nwant: " << want.message_part;
  if (want.line != 0) {
    EXPECT_EQ(diag.loc.line, want.line) << diag.to_string("test");
    EXPECT_EQ(diag.loc.col, want.col) << diag.to_string("test");
  }
}

TEST(TlcParserTest, AcceptsTheKitchenSink) {
  const std::string source = R"(// every construct once
int A[8];
int g = (SEED & 255) + SCALE;

int helper(int a, int b) {
  int acc = 0;
  for (int i = 0; i < 8; i = i + 1) {
    if (a > b) { acc = acc + A[i]; } else if (a == b) { acc = acc ^ i; }
  }
  while (acc > 100) { acc = acc >> 1; }
  return acc | (a && b) | (a || b);
}

int main() {
  A[g & 7] = -~!g;
  helper(1, 2);
  return helper(g, g % 3);
}
)";
  Diag diag;
  const auto unit = parse(source, ParseParams{}, &diag);
  ASSERT_TRUE(unit.has_value()) << diag.to_string("test");
  EXPECT_EQ(unit->functions.size(), 2u);
  EXPECT_NE(unit->main_index, ~u32{0});
}

TEST(TlcParserTest, UndefinedName) {
  expect_rejected("int main() { return x; }",
                  {"undefined name 'x'", 1, 21});
}

TEST(TlcParserTest, UndefinedFunction) {
  expect_rejected("int main() { return f(1); }",
                  {"call to undefined function 'f'", 1, 21});
}

TEST(TlcParserTest, ArityMismatch) {
  expect_rejected(
      "int f(int a) { return a; }\nint main() { return f(1, 2); }",
      {"function 'f' takes 1 argument(s), got 2", 2, 21});
}

TEST(TlcParserTest, CallingAVariable) {
  expect_rejected("int g = 1;\nint main() { return g(); }",
                  {"'g' is not a function", 2, 21});
}

TEST(TlcParserTest, Redefinition) {
  expect_rejected("int main() { int a = 1; int a = 2; return a; }",
                  {"redefinition of 'a'", 1, 29});
  // The SCALE/SEED builtins live in the outermost scope; shadowing them
  // at global scope is a redefinition, with the builtin called out.
  expect_rejected("int SCALE = 3;\nint main() { return 0; }",
                  {"redefinition of builtin 'SCALE'", 1, 5});
}

TEST(TlcParserTest, AssigningABuiltin) {
  expect_rejected("int main() { SEED = 1; return 0; }",
                  {"cannot assign to builtin constant", 1, 14});
}

TEST(TlcParserTest, ArrayMisuse) {
  expect_rejected("int A[8];\nint main() { return A; }",
                  {"array 'A' needs an index", 2, 21});
  expect_rejected("int g = 1;\nint main() { return g[0]; }",
                  {"cannot index scalar 'g'", 2, 21});
  expect_rejected("int main() { int A[8]; return 0; }",
                  {"arrays must be global", 1, 18});
}

TEST(TlcParserTest, ArrayLengthMustBePowerOfTwo) {
  expect_rejected("int A[6];\nint main() { return 0; }",
                  {"array length must be a power of two", 1, 7});
  expect_rejected("int A[2097152];\nint main() { return 0; }",
                  {"array length must be a power of two", 1, 7});
  expect_rejected("int A[0];\nint main() { return 0; }",
                  {"array length must be a power of two", 1, 7});
}

TEST(TlcParserTest, NonConstantGlobalInitialiser) {
  expect_rejected("int f() { return 1; }\nint g = f();\nint main() { return 0; }",
                  {"constant expression", 2, 9});
}

TEST(TlcParserTest, TooManyParameters) {
  expect_rejected(
      "int f(int a, int b, int c, int d, int e, int g, int h) { return 0; }\n"
      "int main() { return 0; }",
      {"too many parameters (max 6)", 1, 53});
}

TEST(TlcParserTest, ExpressionTooDeep) {
  // Each nested call shifts the argument evaluation window one
  // register to the right; 17 levels exceed the r1..r16 stack.
  std::string source = "int f(int a) { return a; }\nint main() { return ";
  for (int i = 0; i < 17; ++i) source += "f(1 + ";
  source += "1";
  for (int i = 0; i < 17; ++i) source += ")";
  source += "; }";
  expect_rejected(source, {"expression too deep"});
}

TEST(TlcParserTest, NestingTooDeep) {
  std::string source = "int main() { return ";
  for (int i = 0; i < 80; ++i) source += "(";
  source += "1";
  for (int i = 0; i < 80; ++i) source += ")";
  source += "; }";
  expect_rejected(source, {"nesting too deep"});
}

TEST(TlcParserTest, MainIsRequiredAndNullary) {
  expect_rejected("int f() { return 1; }", {"program has no 'main'", 1, 1});
  expect_rejected("int main(int a) { return a; }",
                  {"'main' must take no parameters"});
}

TEST(TlcLexerTest, BadTokens) {
  expect_rejected("int main() { return 1 $ 2; }", {"unexpected character"});
  expect_rejected("int main() { return 99999999999999999999; }",
                  {"overflow"});
  expect_rejected("int main() { return 0x; }", {"hex"});
}

TEST(TlcParserTest, StructuralErrors) {
  expect_rejected("int main() { return 1; ", {"unexpected end of input"});
  expect_rejected("int main() { if 1 { return 1; } }", {"'('"});
  expect_rejected("int main() { return ; }", {"expected"});
  expect_rejected("", {"program has no 'main'", 1, 1});
}

TEST(TlcParserTest, DiagWithoutSinkStillFails) {
  // Passing a null Diag* must be safe (the CLI always passes one, but
  // the API shouldn't trap without it).
  EXPECT_FALSE(parse("int main() { return x; }", ParseParams{}, nullptr)
                   .has_value());
}

}  // namespace
}  // namespace tlr::lang
