// Shared differential-oracle check for the TLC test suites: compile a
// source (one-shot mode), run it on the interpreter, and compare the
// full observable state — main's result word, every global scalar,
// every array element — against the AST reference evaluator
// (lang/eval.hpp). diff_test.cpp applies it to generated programs,
// corpus_test.cpp to the committed corpus.
#pragma once

#include <string>

#include "lang/compile.hpp"
#include "lang/eval.hpp"
#include "lang/parser.hpp"
#include "vm/interpreter.hpp"

namespace tlr::lang::test {

/// Empty string on success, otherwise a one-line description of the
/// first divergence (suitable for a gtest failure message).
inline std::string diff_against_oracle(const std::string& source,
                                       const ParseParams& params = {}) {
  CompileOptions options;
  options.name = "diff";
  options.stream = false;
  Diag diag;
  const auto compiled = compile_source(source, params, options, &diag);
  if (!compiled.has_value()) {
    return "does not compile: " + diag.to_string(options.name);
  }

  const auto unit = parse(source, params, &diag);
  if (!unit.has_value()) return "reparse failed: " + diag.to_string("diff");
  const EvalResult expected = evaluate(*unit);
  if (!expected.ok) return "reference evaluator failed: " + expected.error;

  vm::RunLimits limits;
  limits.max_executed = u64{1} << 26;
  vm::Interpreter interp(compiled->program);
  const vm::RunResult run =
      interp.run(limits, [](const isa::DynInst&) { return true; });
  if (!run.halted) return "compiled program did not halt";

  const i64 got = static_cast<i64>(interp.state().load(compiled->result_addr));
  if (got != expected.return_value) {
    return "result mismatch: compiled " + std::to_string(got) +
           ", evaluator " + std::to_string(expected.return_value);
  }
  for (const GlobalSlot& slot : compiled->globals) {
    if (slot.array_len == 0) {
      const i64 word = static_cast<i64>(interp.state().load(slot.addr));
      const i64 want = expected.globals.at(slot.name);
      if (word != want) {
        return "global '" + slot.name + "' mismatch: compiled " +
               std::to_string(word) + ", evaluator " + std::to_string(want);
      }
      continue;
    }
    const auto& want = expected.arrays.at(slot.name);
    for (u32 i = 0; i < slot.array_len; ++i) {
      const i64 word =
          static_cast<i64>(interp.state().load(slot.addr + 8 * i));
      if (word != want[i]) {
        return "array '" + slot.name + "[" + std::to_string(i) +
               "]' mismatch: compiled " + std::to_string(word) +
               ", evaluator " + std::to_string(want[i]);
      }
    }
  }
  return {};
}

/// Convenience for semantics tests: the value `main` returns according
/// to the oracle, after asserting compiled execution agrees.
inline i64 oracle_result(const std::string& source,
                         const ParseParams& params = {}) {
  Diag diag;
  const auto unit = parse(source, params, &diag);
  if (!unit.has_value()) return 0;
  return evaluate(*unit).return_value;
}

}  // namespace tlr::lang::test
