// tlgen generator properties: determinism, seed diversity, size
// monotonicity in spirit (bigger knob -> more source), and the
// structural invariants the fuzz loop depends on (every program
// compiles in both modes and terminates by construction).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "lang/compile.hpp"
#include "lang/gen/generator.hpp"
#include "lang/parser.hpp"

namespace tlr::lang {
namespace {

TEST(TlgenTest, SameConfigSameBytes) {
  for (u64 seed : {u64{1}, u64{77}, u64{0xDEADBEEF}}) {
    for (u32 size = 0; size <= 4; ++size) {
      gen::GenConfig config;
      config.seed = seed;
      config.size = size;
      EXPECT_EQ(gen::generate_program(config),
                gen::generate_program(config))
          << "seed " << seed << " size " << size;
    }
  }
}

TEST(TlgenTest, SeedsProduceDistinctPrograms) {
  std::set<std::string> sources;
  for (u64 seed = 1; seed <= 50; ++seed) {
    gen::GenConfig config;
    config.seed = seed;
    sources.insert(gen::generate_program(config));
  }
  // Hash-collision slack: at least 48 of 50 seeds must differ.
  EXPECT_GE(sources.size(), 48u);
}

TEST(TlgenTest, EveryProgramCompilesInBothModes) {
  for (u64 seed = 1; seed <= 50; ++seed) {
    gen::GenConfig config;
    config.seed = seed;
    config.size = static_cast<u32>(seed % 5);
    const std::string source = gen::generate_program(config);
    Diag diag;
    for (const bool stream : {false, true}) {
      CompileOptions options;
      options.stream = stream;
      ASSERT_TRUE(
          compile_source(source, ParseParams{}, options, &diag).has_value())
          << "seed " << seed << " stream=" << stream << ": "
          << diag.to_string("gen") << "\n--- source ---\n" << source;
    }
  }
}

TEST(TlgenTest, SizeKnobClampsAboveFour) {
  gen::GenConfig four;
  four.seed = 9;
  four.size = 4;
  gen::GenConfig big = four;
  big.size = 99;
  EXPECT_EQ(gen::generate_program(four), gen::generate_program(big));
}

TEST(TlgenTest, ScaleFreeProgramsNeverMentionScale) {
  gen::GenConfig config;
  config.seed = 3;
  config.use_scale = false;
  const std::string source = gen::generate_program(config);
  EXPECT_EQ(source.find("SCALE"), std::string::npos) << source;
}

}  // namespace
}  // namespace tlr::lang
