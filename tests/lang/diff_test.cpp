// Differential property test (the tlgen fuzz loop, pinned in ctest):
// a batch of seeded random TLC programs must execute identically on
// the compiled pipeline and the AST reference evaluator, and the
// compiler must be bit-deterministic. A failure shrinks the size knob
// for the offending seed and prints the smallest failing source, so a
// red run is directly actionable.
#include <gtest/gtest.h>

#include <string>

#include "lang/gen/generator.hpp"
#include "tlc_check.hpp"

namespace tlr::lang {
namespace {

constexpr u64 kSeeds = 200;

/// Re-checks `seed` at every size below `size` and returns the
/// smallest failing configuration's report (the shrink step: smaller
/// sizes emit strictly fewer constructs, so the smallest reproducer is
/// usually a few lines).
std::string shrink_report(u64 seed, u32 size, const std::string& error) {
  for (u32 smaller = 0; smaller < size; ++smaller) {
    gen::GenConfig config;
    config.seed = seed;
    config.size = smaller;
    const std::string source = gen::generate_program(config);
    const std::string why = test::diff_against_oracle(source);
    if (!why.empty()) {
      return "seed " + std::to_string(seed) + " size " +
             std::to_string(smaller) + " (shrunk from " +
             std::to_string(size) + "): " + why + "\n--- source ---\n" +
             source;
    }
  }
  gen::GenConfig config;
  config.seed = seed;
  config.size = size;
  return "seed " + std::to_string(seed) + " size " + std::to_string(size) +
         ": " + error + "\n--- source ---\n" + gen::generate_program(config);
}

TEST(TlcDiffTest, GeneratedProgramsMatchTheOracle) {
  for (u64 seed = 1; seed <= kSeeds; ++seed) {
    gen::GenConfig config;
    config.seed = seed;
    config.size = static_cast<u32>(seed % 5);  // sweep every size knob
    const std::string source = gen::generate_program(config);
    const std::string why = test::diff_against_oracle(source);
    ASSERT_TRUE(why.empty()) << shrink_report(seed, config.size, why);
  }
}

TEST(TlcDiffTest, GenerationIsBitDeterministic) {
  for (u64 seed = 1; seed <= 32; ++seed) {
    gen::GenConfig config;
    config.seed = seed;
    ASSERT_EQ(gen::generate_program(config), gen::generate_program(config))
        << "seed " << seed;
  }
}

TEST(TlcDiffTest, ScaleDoesNotBreakGeneratedPrograms) {
  // SCALE only stretches traversal bounds (never array lengths), so a
  // generated program must stay correct — oracle included — when the
  // study runs it at scale 2.
  ParseParams params;
  params.scale = 2;
  for (u64 seed = 1; seed <= 24; ++seed) {
    gen::GenConfig config;
    config.seed = seed;
    config.size = static_cast<u32>(seed % 3);
    const std::string source = gen::generate_program(config);
    const std::string why = test::diff_against_oracle(source, params);
    ASSERT_TRUE(why.empty())
        << "seed " << seed << " at scale 2: " << why << "\n--- source ---\n"
        << source;
  }
}

}  // namespace
}  // namespace tlr::lang
