// Workload suite tests: registry, determinism, stream well-formedness,
// and the per-benchmark reusability bands the analogs were tuned to
// (kept deliberately loose so harmless retuning does not break CI).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "reuse/reusability.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {
namespace {

vm::RunLimits test_limits(u64 emit = 60000, u64 skip = 10000) {
  vm::RunLimits limits;
  limits.skip = skip;
  limits.max_emitted = emit;
  return limits;
}

TEST(RegistryTest, FourteenBenchmarksInFigureOrder) {
  const auto names = workload_names();
  EXPECT_EQ(names.size(), 14u);
  EXPECT_EQ(names.front(), "applu");   // FP block first, like the figures
  EXPECT_EQ(names.back(), "vortex");
  EXPECT_EQ(int_workload_names().size(), 7u);
  EXPECT_EQ(fp_workload_names().size(), 7u);
}

TEST(RegistryTest, FactoryMatchesDirectConstructors) {
  const Workload direct = make_compress({});
  const Workload via_name = make_workload("compress", {});
  EXPECT_EQ(direct.name, via_name.name);
  EXPECT_EQ(direct.program.size(), via_name.program.size());
}

TEST(RegistryTest, SuiteBuildsAll) {
  const auto suite = make_suite({});
  ASSERT_EQ(suite.size(), 14u);
  std::set<std::string> names;
  for (const Workload& w : suite) {
    names.insert(w.name);
    EXPECT_GT(w.program.size(), 10u) << w.name;
    EXPECT_FALSE(w.description.empty()) << w.name;
  }
  EXPECT_EQ(names.size(), 14u);
}

TEST(RegistryTest, FpFlagMatchesGroup) {
  for (const std::string_view name : fp_workload_names()) {
    EXPECT_TRUE(make_workload(name, {}).is_fp) << name;
  }
  for (const std::string_view name : int_workload_names()) {
    EXPECT_FALSE(make_workload(name, {}).is_fp) << name;
  }
}

// ---- parameterised per-workload stream properties ---------------------

class WorkloadStream : public ::testing::TestWithParam<std::string_view> {};

TEST_P(WorkloadStream, ProducesRequestedWindow) {
  const Workload w = make_workload(GetParam(), {});
  const auto stream = vm::collect_stream(w.program, test_limits());
  EXPECT_EQ(stream.size(), 60000u) << "program halted early";
}

TEST_P(WorkloadStream, DeterministicForSameSeed) {
  WorkloadParams params;
  params.seed = 777;
  const auto s1 = vm::collect_stream(make_workload(GetParam(), params).program,
                                     test_limits(5000, 0));
  const auto s2 = vm::collect_stream(make_workload(GetParam(), params).program,
                                     test_limits(5000, 0));
  ASSERT_EQ(s1.size(), s2.size());
  for (usize i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].pc, s2[i].pc);
    EXPECT_EQ(s1[i].output_value, s2[i].output_value);
    if (s1[i].output_value != s2[i].output_value) break;
  }
}

TEST_P(WorkloadStream, NextPcChainsAndPcInBounds) {
  const Workload w = make_workload(GetParam(), {});
  const auto stream = vm::collect_stream(w.program, test_limits(20000));
  for (usize i = 0; i < stream.size(); ++i) {
    EXPECT_LT(stream[i].pc, w.program.size());
    if (i + 1 < stream.size()) {
      ASSERT_EQ(stream[i].next_pc, stream[i + 1].pc) << "at index " << i;
    }
  }
}

TEST_P(WorkloadStream, InputsAreWellFormed) {
  const Workload w = make_workload(GetParam(), {});
  const auto stream = vm::collect_stream(w.program, test_limits(20000));
  for (const isa::DynInst& inst : stream) {
    EXPECT_LE(inst.num_inputs, 3);
    for (u8 k = 0; k < inst.num_inputs; ++k) {
      const isa::Loc loc = inst.inputs[k].loc;
      if (loc.is_reg()) {
        EXPECT_LT(loc.reg_index(), isa::kNumRegs);
        EXPECT_FALSE(isa::is_zero_reg(loc.reg_index()));
      } else {
        EXPECT_EQ(loc.mem_addr() % 8, 0u);
      }
    }
    if (inst.is_load()) {
      ASSERT_GE(inst.num_inputs, 1);
      EXPECT_TRUE(inst.inputs[inst.num_inputs - 1].loc.is_mem());
    }
    if (inst.is_store()) {
      EXPECT_TRUE(inst.has_output);
      EXPECT_TRUE(inst.output.is_mem());
    }
  }
}

TEST_P(WorkloadStream, MixesComputeAndMemory) {
  const Workload w = make_workload(GetParam(), {});
  const auto stream = vm::collect_stream(w.program, test_limits(20000));
  u64 loads = 0, stores = 0, branches = 0;
  for (const isa::DynInst& inst : stream) {
    loads += inst.is_load();
    stores += inst.is_store();
    branches += inst.is_control();
  }
  EXPECT_GT(loads, stream.size() / 100) << "too few loads";
  EXPECT_GT(stores, 0u);
  EXPECT_GT(branches, stream.size() / 200) << "too few branches";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadStream,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- reusability bands (tuning regression guard) -----------------------

struct Band {
  std::string_view name;
  double lo, hi;
};

class ReusabilityBand : public ::testing::TestWithParam<Band> {};

TEST_P(ReusabilityBand, WithinTunedBand) {
  const Band band = GetParam();
  const Workload w = make_workload(band.name, {});
  vm::RunLimits limits;
  limits.skip = 50000;
  limits.max_emitted = 150000;
  const auto stream = vm::collect_stream(w.program, limits);
  const double frac = reuse::analyze_reusability(stream).fraction();
  EXPECT_GE(frac, band.lo) << band.name;
  EXPECT_LE(frac, band.hi) << band.name;
}

// Bands bracket the paper-calibrated targets generously (streams here
// are shorter than the defaults, which depresses reusability a little).
INSTANTIATE_TEST_SUITE_P(
    Suite, ReusabilityBand,
    ::testing::Values(Band{"applu", 0.35, 0.75},
                      Band{"apsi", 0.60, 0.95},
                      Band{"fpppp", 0.55, 0.95},
                      Band{"hydro2d", 0.85, 1.0},
                      Band{"su2cor", 0.80, 1.0},
                      Band{"tomcatv", 0.70, 1.0},
                      Band{"turb3d", 0.80, 1.0},
                      Band{"compress", 0.75, 1.0},
                      Band{"gcc", 0.80, 1.0},
                      Band{"go", 0.80, 1.0},
                      Band{"ijpeg", 0.80, 1.0},
                      Band{"li", 0.80, 1.0},
                      Band{"perl", 0.75, 1.0},
                      Band{"vortex", 0.70, 1.0}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace tlr::workloads
